(** The bytecode VM execution tier.

    The six reference machines are AST-walking steppers: faithful, but
    every sweep pays their interpretive overhead, which caps the input
    sizes at which the Theorem 24/25/26 separations are visible. This
    tier compiles the expanded Core Scheme AST once and then runs it in
    one of two modes, selected by {!Machine.Config.t.engine}:

    - {b Instrumented} ([Vm]): tree-threaded code over the real cost
      domain ([Types.value]/[Env]/[Store]/[cont]). The compiler resolves
      constants and argument-evaluation spines per node; each dispatch
      applies exactly one [I_tail] machine transition and charges
      Definition 21's flat (and optionally Figure 8's linked) costs, so
      step counts, peak space, GC schedule, telemetry events, and fault
      injection are bit-compatible with [Machine.run] on the [Tail]
      variant. Only the [Tail] variant is supported: proper tail
      recursion is exactly what frame reuse implements, and the other
      variants exist to measure what happens without it.

    - {b Fast} ([Vm_fast]): a flat instruction array executed by a
      dispatch loop with explicit value and frame stacks over an
      untracked value domain — no store, no space accounting. A tail
      call replaces the arguments and jumps without pushing a frame, so
      the callee runs in (reuses) the caller's frame: Clinger's "proper
      tail recursion" realized as frame reuse. Reports answers, output,
      and an instruction count; peak space is not measured (reported as
      0). Left-to-right evaluation only, no fault injection, no linked
      measurement.

    Both modes are differentially checked against the steppers by
    [Tailspace_harness.Oracle]. *)

module Ast = Tailspace_ast.Ast
module Machine = Tailspace_core.Machine
module Annot = Tailspace_analysis.Annot
module Resilience = Tailspace_resilience.Resilience

(** {1 Results} *)

type outcome =
  | Done of string  (** the rendered answer (Definition 11) *)
  | Stuck of string
  | Aborted of Resilience.abort_reason

type result = {
  outcome : outcome;
  steps : int;
      (** instrumented: machine transitions, identical to the stepper's
          count; fast: executed instructions *)
  peaks : (Tailspace_core.Space_model.t * int) list;
      (** Definition 21 peaks per requested model, identical to the
          stepper's; fast mode reports [[(Flat, 0)]] (accounting is
          compiled out) *)
  program_size : int;  (** [|P|], the [Ast.size] of the executed term *)
  gc_runs : int;  (** [0] in fast mode *)
  output : string;
}

val peak_of : result -> Tailspace_core.Space_model.t -> int option
val peak_space : result -> int
val peak_linked : result -> int option
val peak_log : result -> int option

val exec_program :
  ?opts:Machine.Run_opts.t ->
  Machine.Config.t ->
  program:Ast.expr ->
  input:Ast.expr ->
  result
(** Run [(program input)] on the tier named by [config.engine]
    ([Stepper] is treated as [Vm]: this module always runs VM code).

    @raise Invalid_argument if [config.engine = Vm] and
    [config.variant <> Tail]; or if [config.engine = Vm_fast] and the
    config/opts demand accounting the fast tier compiles out
    ([variant <> Tail], a non-left-to-right [perm], a [measure] list
    beyond [[Flat]], a provenance census, or a fault plan). *)

(** {1 The fast tier's code, exposed for tests and disassembly} *)

type instr =
  | Const of int  (** push constant-pool slot *)
  | Local of int * int  (** push local (rib depth, slot) *)
  | Global of int  (** push global slot *)
  | SetLocal of int * int  (** pop value, write local, push unspecified *)
  | SetGlobal of int
  | MkClosure of int  (** capture the current rib chain over template *)
  | JumpIfFalse of int  (** pop; jump when [#f] *)
  | Jump of int
  | Call of int  (** call with [n] arguments: push frame, enter *)
  | TailCall of int
      (** tail call with [n] arguments: {e no} frame push — the callee
          runs in the caller's frame (proper tail recursion) *)
  | Return  (** pop frame: restore caller pc and environment *)
  | Halt

type compiled

val compile : ?annot:Annot.t -> Ast.expr -> compiled
(** Compile a closed expression (free names resolve to the primitive
    and prelude globals) together with the shared prelude. Total on any
    expanded AST. With [annot], tail positions come from the PR 5
    annotation pass's table (falling back to the structural answer for
    nodes it never saw — the emitted code is identical either way). *)

val main_code : compiled -> instr array
(** The compiled expression's own instruction stream (prelude excluded):
    the main unit followed by the templates it created, addresses
    rebased to 0. *)

val disassemble : compiled -> string
(** Human-readable listing of {!main_code} — one instruction per line
    with resolved names, constants, and template boundaries; jump and
    call targets are unit-relative, so the listing is stable under
    prelude and primitive-table changes. Golden-tested. *)

val run_fast :
  ?fuel:int -> ?budget:Resilience.Budget.t -> compiled -> result
(** Execute compiled code directly (the engine behind [Vm_fast]). *)
